package tlb

import (
	"fmt"

	"clip/internal/snapshot"
)

// Save serializes both translation buffers and the counters.
func (h *Hierarchy) Save(w *snapshot.Writer) {
	h.dtlb.save(w)
	h.stlb.save(w)
	w.U64(h.stats.Accesses)
	w.U64(h.stats.DTLBHits)
	w.U64(h.stats.STLBHits)
	w.U64(h.stats.Walks)
	h.stats.WalkDelay.Save(w)
}

// Load restores a snapshot taken from an identically-configured hierarchy.
func (h *Hierarchy) Load(r *snapshot.Reader) {
	h.dtlb.load(r)
	h.stlb.load(r)
	h.stats.Accesses = r.U64()
	h.stats.DTLBHits = r.U64()
	h.stats.STLBHits = r.U64()
	h.stats.Walks = r.U64()
	h.stats.WalkDelay.Load(r)
}

func (t *tlb) save(w *snapshot.Writer) {
	w.Int(len(t.entries))
	for i := range t.entries {
		e := &t.entries[i]
		w.Bool(e.valid)
		w.U64(e.tag)
		w.U64(e.stamp)
	}
	w.U64(t.clock)
}

func (t *tlb) load(r *snapshot.Reader) {
	if n := r.Int(); r.Err() == nil && n != len(t.entries) {
		r.Fail(fmt.Errorf("tlb: snapshot has %d entries, receiver has %d: %w",
			n, len(t.entries), snapshot.ErrCorrupt))
	}
	if r.Err() != nil {
		return
	}
	for i := range t.entries {
		e := &t.entries[i]
		e.valid = r.Bool()
		e.tag = r.U64()
		e.stamp = r.U64()
	}
	t.clock = r.U64()
}
