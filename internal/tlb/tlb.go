// Package tlb models the address-translation hierarchy of the baseline
// (Table 3): a 64-entry 4-way L1 DTLB with 1-cycle latency, a 2048-entry
// 16-way shared L2 TLB (STLB) with 8-cycle latency, and a fixed-cost page
// walk for STLB misses. Translation latency is added in front of the L1D
// access, which is where it bites loads.
package tlb

import (
	"fmt"

	"clip/internal/mem"
	"clip/internal/stats"
)

// Config sizes one TLB level.
type Config struct {
	Entries int
	Ways    int
	Latency uint64
}

// Validate reports sizing errors.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb: bad geometry %+v", c)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("tlb: sets (%d) must be a power of two", sets)
	}
	return nil
}

// HierarchyConfig combines the paper's DTLB + STLB + page walker.
type HierarchyConfig struct {
	DTLB Config
	STLB Config
	// WalkLatency is the page-table walk cost on an STLB miss (cycles).
	WalkLatency uint64
}

// DefaultConfig matches Table 3. The DTLB does NOT scale with div: its job
// is covering the *concurrent* working pages (one per active stream), and
// stream counts are a workload property, not a capacity one — an 8-entry
// DTLB would thrash on any 9-stream loop regardless of cache scaling. Only
// the reach-oriented STLB scales (with a generous floor).
func DefaultConfig(div int) HierarchyConfig {
	if div < 1 {
		div = 1
	}
	d := Config{Entries: 64, Ways: 4, Latency: 1}
	stlbEntries := 2048 / div
	if stlbEntries < 256 {
		stlbEntries = 256
	}
	// Round sets to a power of two at 16 ways.
	sets := stlbEntries / 16
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	s := Config{Entries: p * 16, Ways: 16, Latency: 8}
	return HierarchyConfig{DTLB: d, STLB: s, WalkLatency: 60}
}

// Stats counts translation outcomes.
type Stats struct {
	Accesses  uint64
	DTLBHits  uint64
	STLBHits  uint64
	Walks     uint64
	WalkDelay stats.LatencyAcc
}

// DTLBHitRate returns first-level hit rate.
func (s *Stats) DTLBHitRate() float64 { return stats.Ratio(s.DTLBHits, s.Accesses) }

type entry struct {
	valid bool
	tag   uint64
	stamp uint64
}

// tlb is one set-associative translation buffer (LRU).
type tlb struct {
	sets, ways int
	entries    []entry
	clock      uint64
}

func newTLB(c Config) *tlb {
	sets := c.Entries / c.Ways
	return &tlb{sets: sets, ways: c.Ways, entries: make([]entry, c.Entries)}
}

func (t *tlb) index(page uint64) (set int, tag uint64) {
	// Hash the set index: synthetic workloads allocate their arrays at
	// large aligned boundaries, so plain low-bit indexing piles every
	// concurrent stream's page into one set. Hashing spreads them the way
	// real (higher-associativity) TLBs and unaligned heaps do.
	h := mem.Mix64(page)
	return int(h & uint64(t.sets-1)), page
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// lookup probes for page; hit updates recency.
func (t *tlb) lookup(page uint64) bool {
	set, tag := t.index(page)
	_ = tag
	base := set * t.ways
	for w := 0; w < t.ways; w++ {
		e := &t.entries[base+w]
		if e.valid && e.tag == tag {
			t.clock++
			e.stamp = t.clock
			return true
		}
	}
	return false
}

// insert installs page, evicting LRU.
func (t *tlb) insert(page uint64) {
	set, tag := t.index(page)
	base := set * t.ways
	victim := base
	for w := 0; w < t.ways; w++ {
		e := &t.entries[base+w]
		if !e.valid {
			victim = base + w
			break
		}
		if e.stamp < t.entries[victim].stamp {
			victim = base + w
		}
	}
	t.clock++
	t.entries[victim] = entry{valid: true, tag: tag, stamp: t.clock}
}

// Hierarchy is one core's DTLB backed by the shared STLB.
type Hierarchy struct {
	cfg   HierarchyConfig
	dtlb  *tlb
	stlb  *tlb // shared in hardware; modelled per-core for simplicity
	stats Stats
}

// New builds a translation hierarchy.
func New(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.DTLB.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.STLB.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{cfg: cfg, dtlb: newTLB(cfg.DTLB), stlb: newTLB(cfg.STLB)}, nil
}

// MustNew panics on config errors.
func MustNew(cfg HierarchyConfig) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Stats returns live counters.
func (h *Hierarchy) Stats() *Stats { return &h.stats }

// Translate returns the extra cycles the access at addr spends on address
// translation: 0 for a DTLB hit (the 1-cycle DTLB runs in parallel with the
// L1D tag lookup), the STLB latency on a DTLB miss, and STLB latency plus
// the page-walk cost on an STLB miss. The translation is installed on the
// way back, as hardware does.
func (h *Hierarchy) Translate(addr mem.Addr) uint64 {
	page := addr.PageID()
	h.stats.Accesses++
	if h.dtlb.lookup(page) {
		h.stats.DTLBHits++
		return 0
	}
	if h.stlb.lookup(page) {
		h.stats.STLBHits++
		h.dtlb.insert(page)
		return h.cfg.STLB.Latency
	}
	h.stats.Walks++
	delay := h.cfg.STLB.Latency + h.cfg.WalkLatency
	h.stats.WalkDelay.Add(delay)
	h.stlb.insert(page)
	h.dtlb.insert(page)
	return delay
}
