package tlb

import (
	"testing"

	"clip/internal/mem"
)

func TestConfigValidate(t *testing.T) {
	if (Config{Entries: 0, Ways: 4}).Validate() == nil {
		t.Fatal("zero entries accepted")
	}
	if (Config{Entries: 65, Ways: 4}).Validate() == nil {
		t.Fatal("non-divisible geometry accepted")
	}
	if (Config{Entries: 24, Ways: 4}).Validate() == nil {
		t.Fatal("non-pow2 sets accepted")
	}
	if (Config{Entries: 64, Ways: 4}).Validate() != nil {
		t.Fatal("valid geometry rejected")
	}
}

func TestDefaultConfigScales(t *testing.T) {
	full := DefaultConfig(1)
	if full.DTLB.Entries != 64 || full.STLB.Entries != 2048 {
		t.Fatalf("full-scale config wrong: %+v", full)
	}
	scaled := DefaultConfig(8)
	if scaled.DTLB.Entries != full.DTLB.Entries {
		t.Fatal("DTLB must not scale: it covers concurrent streams, not reach")
	}
	if scaled.STLB.Entries >= full.STLB.Entries {
		t.Fatal("STLB did not scale down")
	}
	if err := scaled.DTLB.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := scaled.STLB.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstAccessWalksThenHits(t *testing.T) {
	h := MustNew(DefaultConfig(1))
	addr := mem.Addr(0x123456)
	if d := h.Translate(addr); d == 0 {
		t.Fatal("first access should walk")
	}
	if d := h.Translate(addr); d != 0 {
		t.Fatalf("second access delayed %d cycles; DTLB should hit", d)
	}
	s := h.Stats()
	if s.Walks != 1 || s.DTLBHits != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSTLBBacksDTLB(t *testing.T) {
	cfg := DefaultConfig(1)
	h := MustNew(cfg)
	// Touch enough distinct pages to overflow the 64-entry DTLB but not the
	// 2048-entry STLB, then revisit the first page: STLB hit (8 cycles).
	for i := 0; i < 512; i++ {
		h.Translate(mem.Addr(i * mem.PageBytes))
	}
	d := h.Translate(mem.Addr(0))
	if d != cfg.STLB.Latency {
		t.Fatalf("revisit delay %d, want STLB latency %d", d, cfg.STLB.Latency)
	}
}

func TestWalkCostIncludesSTLBLatency(t *testing.T) {
	cfg := DefaultConfig(1)
	h := MustNew(cfg)
	d := h.Translate(0x9999000)
	if d != cfg.STLB.Latency+cfg.WalkLatency {
		t.Fatalf("walk delay %d, want %d", d, cfg.STLB.Latency+cfg.WalkLatency)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// Single-set (fully associative) 2-way DTLB: every page shares the set,
	// so touching pages 0,2,4 must evict the least-recently-used page 0
	// while 2 and 4 survive.
	h := MustNew(HierarchyConfig{
		DTLB:        Config{Entries: 2, Ways: 2, Latency: 1},
		STLB:        Config{Entries: 64, Ways: 4, Latency: 8},
		WalkLatency: 50,
	})
	for _, p := range []uint64{0, 2, 4} {
		h.Translate(mem.Addr(p * mem.PageBytes))
	}
	if d := h.Translate(mem.Addr(2 * mem.PageBytes)); d != 0 {
		t.Fatalf("page 2 should still be in DTLB, delay %d", d)
	}
	if d := h.Translate(mem.Addr(4 * mem.PageBytes)); d != 0 {
		t.Fatalf("page 4 should still be in DTLB, delay %d", d)
	}
	if d := h.Translate(mem.Addr(0)); d == 0 {
		t.Fatal("page 0 should have been evicted from the DTLB")
	}
}

func TestDTLBHitRateOnLoop(t *testing.T) {
	h := MustNew(DefaultConfig(1))
	// A loop over 8 pages: after the cold pass everything hits.
	for pass := 0; pass < 100; pass++ {
		for p := 0; p < 8; p++ {
			h.Translate(mem.Addr(p * mem.PageBytes))
		}
	}
	if hr := h.Stats().DTLBHitRate(); hr < 0.98 {
		t.Fatalf("loop DTLB hit rate %v < 0.98", hr)
	}
}
