package trace

import (
	"fmt"
	"sort"

	"clip/internal/mem"
)

// Scale resolves benchmark footprints against the simulated cache hierarchy.
// Benchmark intensity is defined relative to the LLC capacity per core so the
// same workload names remain memory-intensive when the harness scales the
// hierarchy down for fast runs.
type Scale struct {
	// LLCLinesPerCore is the per-core LLC capacity in cache lines.
	LLCLinesPerCore uint64
}

// DefaultScale matches the paper's 2MB/core LLC.
var DefaultScale = Scale{LLCLinesPerCore: 32768}

// family captures the behavioural template for one benchmark family; members
// differ in seed and slight parameter jitter, like distinct SimPoints.
type family struct {
	build func(name string, seed uint64, sc Scale) Config
}

// llcMult converts an LLC-relative footprint to lines, min 256.
func llcMult(sc Scale, m float64) uint64 {
	v := uint64(float64(sc.LLCLinesPerCore) * m)
	if v < 256 {
		v = 256
	}
	return v
}

var specFamilies = map[string]family{
	// perlbench: cache-friendly, low MPKI, branchy.
	"600.perlbench": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatStream, StrideLines: 1, Weight: 3},
				{Class: PatIrregular, Weight: 1},
			},
			FootprintLines: llcMult(sc, 0.2), LoadFrac: 0.25, StoreFrac: 0.10,
			BranchFrac: 0.18, BranchMispredictRate: 0.04, ExecLatMean: 2}
	}},
	// gcc: mixed, moderate MPKI, branch-correlated pockets.
	"602.gcc": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatStream, StrideLines: 1, Weight: 2},
				{Class: PatMixed, StrideLines: 1, Weight: 2},
				{Class: PatIrregular, Weight: 1},
			},
			FootprintLines: llcMult(sc, 2), LoadFrac: 0.26, StoreFrac: 0.10,
			BranchFrac: 0.16, BranchMispredictRate: 0.05, MixedTakenProb: 0.6,
			ExecLatMean: 2}
	}},
	// bwaves: heavy regular streams, bandwidth-bound, prefetch-friendly.
	"603.bwaves": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatStream, StrideLines: 1, Weight: 4},
				{Class: PatStream, StrideLines: 2, Weight: 2},
				{Class: PatMultiStride, StrideLines: 1, Weight: 1},
			},
			FootprintLines: llcMult(sc, 6), StreamRegionLines: llcMult(sc, 6),
			LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.06,
			BranchMispredictRate: 0.01, ExecLatMean: 3}
	}},
	// mcf: pointer chasing + branch-correlated criticality; the paper's
	// canonical dynamic-critical workload (mcf_1554B discussed in §4.2).
	"605.mcf": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatChase, Weight: 3},
				{Class: PatMixed, StrideLines: 1, Weight: 2},
				{Class: PatStream, StrideLines: 1, Weight: 1},
			},
			FootprintLines: llcMult(sc, 8), LoadFrac: 0.30, StoreFrac: 0.08,
			BranchFrac: 0.17, BranchMispredictRate: 0.08, MixedTakenProb: 0.5,
			ChaseChainFrac: 0.9, ExecLatMean: 2}
	}},
	// cactuBSSN: many concurrent strided streams whose interleaving defeats
	// naive per-IP deltas (paper: Berti accuracy only 12% on cactu_2421B).
	"607.cactuBSSN": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatMultiStride, StrideLines: 3, Weight: 3},
				{Class: PatMultiStride, StrideLines: 7, Weight: 3},
				{Class: PatIrregular, Weight: 2},
				{Class: PatStream, StrideLines: 5, Weight: 1},
			},
			FootprintLines: llcMult(sc, 5), StreamRegionLines: llcMult(sc, 4),
			LoadFrac: 0.34, StoreFrac: 0.13, BranchFrac: 0.04,
			BranchMispredictRate: 0.01, ExecLatMean: 4}
	}},
	// lbm: few IPs, huge unit-stride streams, extreme bandwidth demand.
	"619.lbm": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatStream, StrideLines: 1, Weight: 5},
				{Class: PatStream, StrideLines: 1, Weight: 4},
			},
			FootprintLines: llcMult(sc, 10), StreamRegionLines: llcMult(sc, 10),
			LoadFrac: 0.30, StoreFrac: 0.18, BranchFrac: 0.03,
			BranchMispredictRate: 0.005, ExecLatMean: 3}
	}},
	// omnetpp: pointer-heavy discrete event simulation, low regularity.
	"620.omnetpp": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatChase, Weight: 3},
				{Class: PatIrregular, Weight: 2},
				{Class: PatMixed, StrideLines: 1, Weight: 1},
			},
			FootprintLines: llcMult(sc, 4), LoadFrac: 0.28, StoreFrac: 0.12,
			BranchFrac: 0.15, BranchMispredictRate: 0.06, MixedTakenProb: 0.55,
			ChaseChainFrac: 0.8, ExecLatMean: 2}
	}},
	// wrf: weather model, strided with phase behaviour.
	"621.wrf": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatStream, StrideLines: 1, Weight: 3},
				{Class: PatMultiStride, StrideLines: 2, Weight: 2},
				{Class: PatIrregular, Weight: 1},
			},
			FootprintLines: llcMult(sc, 3), StreamRegionLines: llcMult(sc, 3),
			LoadFrac: 0.30, StoreFrac: 0.11, BranchFrac: 0.08,
			BranchMispredictRate: 0.02, ExecLatMean: 3, PhasePeriod: 40000}
	}},
	// xalancbmk: XML transform, irregular with hot streams.
	"623.xalancbmk": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatIrregular, Weight: 2},
				{Class: PatStream, StrideLines: 1, Weight: 2},
				{Class: PatMixed, StrideLines: 1, Weight: 2},
			},
			FootprintLines: llcMult(sc, 3), LoadFrac: 0.27, StoreFrac: 0.09,
			BranchFrac: 0.17, BranchMispredictRate: 0.05, MixedTakenProb: 0.65,
			ExecLatMean: 2}
	}},
	// pop2: ocean model, streams plus halo-exchange irregularity.
	"628.pop2": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatStream, StrideLines: 1, Weight: 3},
				{Class: PatMultiStride, StrideLines: 4, Weight: 2},
				{Class: PatIrregular, Weight: 1},
			},
			FootprintLines: llcMult(sc, 3), StreamRegionLines: llcMult(sc, 3),
			LoadFrac: 0.29, StoreFrac: 0.12, BranchFrac: 0.09,
			BranchMispredictRate: 0.02, ExecLatMean: 3}
	}},
	// leela: game tree search, small footprint, branchy (low MPKI filler).
	"641.leela": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatIrregular, Weight: 1},
				{Class: PatStream, StrideLines: 1, Weight: 2},
			},
			FootprintLines: llcMult(sc, 0.4), LoadFrac: 0.24, StoreFrac: 0.08,
			BranchFrac: 0.2, BranchMispredictRate: 0.09, ExecLatMean: 2}
	}},
	// fotonik3d: electromagnetic solver, very regular streams.
	"649.fotonik3d": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatStream, StrideLines: 1, Weight: 4},
				{Class: PatStream, StrideLines: 2, Weight: 2},
			},
			FootprintLines: llcMult(sc, 8), StreamRegionLines: llcMult(sc, 8),
			LoadFrac: 0.31, StoreFrac: 0.14, BranchFrac: 0.04,
			BranchMispredictRate: 0.005, ExecLatMean: 3}
	}},
	// roms: ocean model, multi-stream with moderate irregularity.
	"654.roms": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatStream, StrideLines: 1, Weight: 3},
				{Class: PatStream, StrideLines: 3, Weight: 2},
				{Class: PatMultiStride, StrideLines: 2, Weight: 2},
				{Class: PatIrregular, Weight: 1},
			},
			FootprintLines: llcMult(sc, 5), StreamRegionLines: llcMult(sc, 5),
			LoadFrac: 0.31, StoreFrac: 0.12, BranchFrac: 0.06,
			BranchMispredictRate: 0.015, ExecLatMean: 3}
	}},
	// xz: compression, mixed streams and matches.
	"657.xz": {func(n string, s uint64, sc Scale) Config {
		return Config{Name: n, Seed: s,
			Sites: []SiteSpec{
				{Class: PatStream, StrideLines: 1, Weight: 2},
				{Class: PatIrregular, Weight: 2},
				{Class: PatMixed, StrideLines: 1, Weight: 1},
			},
			FootprintLines: llcMult(sc, 2.5), LoadFrac: 0.27, StoreFrac: 0.10,
			BranchFrac: 0.13, BranchMispredictRate: 0.06, MixedTakenProb: 0.5,
			ExecLatMean: 2}
	}},
}

// SpecHomogeneous45 lists the 45 memory-intensive SPEC CPU2017 SimPoint trace
// names the paper's homogeneous mixes use (Figure 10's x-axis).
var SpecHomogeneous45 = []string{
	"600.perlbench_s-570B",
	"602.gcc_s-1850B", "602.gcc_s-2226B", "602.gcc_s-734B",
	"603.bwaves_s-1740B", "603.bwaves_s-2609B", "603.bwaves_s-2931B", "603.bwaves_s-891B",
	"605.mcf_s-1152B", "605.mcf_s-1536B", "605.mcf_s-1554B", "605.mcf_s-1644B",
	"605.mcf_s-472B", "605.mcf_s-484B", "605.mcf_s-566B", "605.mcf_s-782B", "605.mcf_s-994B",
	"607.cactuBSSN_s-2421B", "607.cactuBSSN_s-3477B", "607.cactuBSSN_s-4004B",
	"619.lbm_s-2676B", "619.lbm_s-2677B", "619.lbm_s-3766B", "619.lbm_s-4268B",
	"620.omnetpp_s-141B", "620.omnetpp_s-874B",
	"621.wrf_s-6673B", "621.wrf_s-8065B",
	"623.xalancbmk_s-10B", "623.xalancbmk_s-165B", "623.xalancbmk_s-202B",
	"628.pop2_s-17B",
	"641.leela_s-1083B",
	"649.fotonik3d_s-10881B", "649.fotonik3d_s-1176B", "649.fotonik3d_s-7084B",
	"649.fotonik3d_s-8225B",
	"654.roms_s-1007B", "654.roms_s-1070B", "654.roms_s-1390B", "654.roms_s-1613B",
	"654.roms_s-293B", "654.roms_s-294B", "654.roms_s-523B",
	"657.xz_s-1306B",
}

// GAPTraces lists the GAP benchmark traces used in heterogeneous mixes.
var GAPTraces = []string{
	"bc-twitter", "bc-web", "bfs-twitter", "bfs-web", "bfs-road",
	"cc-twitter", "cc-web", "pr-twitter", "pr-web", "pr-kron",
	"sssp-twitter", "sssp-road", "tc-twitter", "tc-urand",
	"bc-road", "cc-road",
}

// CloudSuiteTraces lists the CloudSuite workloads (Figure 17).
var CloudSuiteTraces = []string{
	"cassandra", "classification", "cloud9", "nutch", "streaming",
}

// CVPTraces lists the client/server CVP-1 traces (Figure 17). server_013 is
// called out in the paper (§4.3: 32k IPs, only nine critical).
var CVPTraces = []string{
	"client_001", "client_002", "client_005", "client_008",
	"server_001", "server_002", "server_003", "server_009",
	"server_013", "server_021",
}

func gapConfig(name string, seed uint64, sc Scale) Config {
	return Config{Name: name, Seed: seed,
		Sites: []SiteSpec{
			{Class: PatIrregular, Weight: 4}, // frontier gathers
			{Class: PatStream, StrideLines: 1, Weight: 2},
			{Class: PatChase, Weight: 1},
		},
		FootprintLines: llcMult(sc, 12), LoadFrac: 0.30, StoreFrac: 0.06,
		BranchFrac: 0.14, BranchMispredictRate: 0.07, ChaseChainFrac: 0.5,
		ExecLatMean: 2}
}

func cloudConfig(name string, seed uint64, sc Scale) Config {
	return Config{Name: name, Seed: seed,
		Sites: []SiteSpec{
			{Class: PatIrregular, Weight: 3},
			{Class: PatChase, Weight: 1},
			{Class: PatStream, StrideLines: 1, Weight: 1},
		},
		FootprintLines: llcMult(sc, 3), LoadFrac: 0.26, StoreFrac: 0.10,
		BranchFrac: 0.18, BranchMispredictRate: 0.07, ChaseChainFrac: 0.4,
		// Large instruction footprints alias criticality tables (§4.3).
		IPFootprint: 24, ExecLatMean: 2}
}

func cvpConfig(name string, seed uint64, sc Scale) Config {
	cfg := cloudConfig(name, seed, sc)
	cfg.IPFootprint = 32
	cfg.FootprintLines = llcMult(sc, 2)
	return cfg
}

// jitter perturbs a family template per SimPoint: distinct simulation points
// of one benchmark share behaviour but differ in intensity, exactly like the
// paper's nine mcf SimPoints spanning a range of MPKIs. Deterministic in the
// trace name.
func jitter(cfg Config, name string) Config {
	h := mem.HashString(name + "/jitter")
	scale := func(base float64, h uint64, spread float64) float64 {
		// uniform in [1-spread, 1+spread]
		u := float64(h%1024)/1024*2 - 1
		return base * (1 + spread*u)
	}
	cfg.FootprintLines = uint64(scale(float64(cfg.FootprintLines), h, 0.30))
	if cfg.FootprintLines < 256 {
		cfg.FootprintLines = 256
	}
	if cfg.StreamRegionLines > 0 {
		cfg.StreamRegionLines = uint64(scale(float64(cfg.StreamRegionLines), h>>10, 0.30))
	}
	cfg.LoadFrac = scale(cfg.LoadFrac, h>>20, 0.10)
	cfg.BranchMispredictRate = scale(cfg.BranchMispredictRate, h>>30, 0.25)
	if cfg.MixedTakenProb > 0 {
		cfg.MixedTakenProb = scale(cfg.MixedTakenProb, h>>40, 0.15)
		if cfg.MixedTakenProb > 0.95 {
			cfg.MixedTakenProb = 0.95
		}
	}
	return cfg
}

// Lookup builds the Config for a paper trace name at the given scale.
func Lookup(name string, sc Scale) (Config, error) {
	seed := mem.HashString(name)
	// SPEC names are "<family>_s-<simpoint>B". Pick the longest matching
	// family so the result cannot depend on map iteration order should one
	// family name ever be a prefix of another (e.g. "x264" vs "x").
	var bestFam string
	//clipvet:orderfree longest-prefix max is a commutative reduction
	for fam := range specFamilies {
		if len(name) > len(fam) && name[:len(fam)] == fam && len(fam) > len(bestFam) {
			bestFam = fam
		}
	}
	if bestFam != "" {
		return jitter(specFamilies[bestFam].build(name, seed, sc), name), nil
	}
	for _, g := range GAPTraces {
		if g == name {
			return gapConfig(name, seed, sc), nil
		}
	}
	for _, c := range CloudSuiteTraces {
		if c == name {
			return cloudConfig(name, seed, sc), nil
		}
	}
	for _, c := range CVPTraces {
		if c == name {
			return cvpConfig(name, seed, sc), nil
		}
	}
	return Config{}, fmt.Errorf("trace: unknown workload %q", name)
}

// MustLookup is Lookup but panics on unknown names.
func MustLookup(name string, sc Scale) Config {
	cfg, err := Lookup(name, sc)
	if err != nil {
		panic(err)
	}
	return cfg
}

// AllNames returns every registered trace name, sorted.
func AllNames() []string {
	var names []string
	names = append(names, SpecHomogeneous45...)
	names = append(names, GAPTraces...)
	names = append(names, CloudSuiteTraces...)
	names = append(names, CVPTraces...)
	sort.Strings(names)
	return names
}
