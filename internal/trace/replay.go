package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements trace pre-decoding: instead of running the synthetic
// generator inside the core's dispatch loop, a workload's instruction stream
// is decoded once into a flat []Instr window shared by every simulation of
// that workload (a trace-driven simulator reads the same trace file for every
// configuration it evaluates). Cores then consume instructions with a bulk
// memcpy per refill, so the generator never runs on the tick hot path.
//
// Sharing is safe because generators are deterministic in their Config: two
// simulations of the same (name, seed, offset, ...) see byte-identical
// streams whether they decode privately or read the shared window.

// Batcher is an optional Generator fast path: NextBatch fills dst with the
// next len(dst) instructions of the stream and returns how many it wrote
// (always len(dst) for the endless synthetic streams).
type Batcher interface {
	NextBatch(dst []Instr) int
}

// Windower is an optional Generator fast path one step beyond Batcher: Window
// returns a read-only view of the next pre-decoded instructions *in place*
// (no copy), advancing the stream past them. An empty return means the
// zero-copy window is exhausted for good and the caller must fall back to
// Next/NextBatch, which continue the stream seamlessly. Callers must not
// mutate the returned slice: its backing array is shared between every
// simulation replaying the same workload.
type Windower interface {
	Window() []Instr
}

const (
	// sharedWindow bounds the pre-decoded prefix per stream (16k Instr,
	// ~512KB). Runs that consume more fall back to a private generator
	// clone positioned at the window edge — correctness never depends on
	// the window size, only how much of the stream is served by memcpy.
	sharedWindow = 16384
	// sharedChunk is the growth step: windows extend on demand so short
	// runs do not pay for the full window.
	sharedChunk = 4096
	// maxStreams bounds the cache; once full, new configs decode privately.
	maxStreams = 256
)

// stream is one shared pre-decoded prefix. pub holds the published prefix;
// its backing array is append-only and the atomic store/load pair orders the
// element writes before any reader indexes them, so readers are lock-free.
type stream struct {
	mu  sync.Mutex
	g   *gen // positioned exactly at len(*pub.Load())
	pub atomic.Pointer[[]Instr]
}

var (
	sharedMu      sync.Mutex
	sharedStreams = map[string]*stream{}
)

// Shared returns a Generator for cfg backed by the process-wide pre-decoded
// stream cache. The returned stream is byte-identical to New(cfg)'s.
func Shared(cfg Config) (Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Config fully determines the stream, so its printed form is the key.
	key := fmt.Sprintf("%#v", cfg)
	sharedMu.Lock()
	st, ok := sharedStreams[key]
	if !ok {
		if len(sharedStreams) >= maxStreams {
			sharedMu.Unlock()
			return New(cfg)
		}
		g, err := newGen(cfg)
		if err != nil {
			sharedMu.Unlock()
			return nil, err
		}
		st = &stream{g: g}
		sharedStreams[key] = st
	}
	sharedMu.Unlock()
	return &Replay{name: cfg.Name, st: st}, nil
}

// Replay reads one simulation's view of a shared stream: an index into the
// published window, then a private continuation generator past its edge.
type Replay struct {
	name string
	prog []Instr // snapshot of the published window
	pos  int
	st   *stream
	cont *gen // continuation past the shared window; nil until needed
}

// Name implements Generator.
func (r *Replay) Name() string { return r.name }

// Next implements Generator.
func (r *Replay) Next() Instr {
	if r.pos < len(r.prog) {
		ins := r.prog[r.pos]
		r.pos++
		return ins
	}
	if r.refill() {
		ins := r.prog[r.pos]
		r.pos++
		return ins
	}
	return r.cont.Next()
}

// Window implements Windower: it hands out the not-yet-consumed tail of the
// published window without copying, growing the shared window if needed, and
// returns nil once the window is exhausted (the continuation generator then
// serves Next/NextBatch).
func (r *Replay) Window() []Instr {
	if r.pos >= len(r.prog) && !r.refill() {
		return nil
	}
	w := r.prog[r.pos:]
	r.pos = len(r.prog)
	return w
}

// NextBatch implements Batcher: bulk-copies from the window (the common
// case is one memcpy per core refill).
func (r *Replay) NextBatch(dst []Instr) int {
	n := 0
	for n < len(dst) {
		if r.pos < len(r.prog) {
			c := copy(dst[n:], r.prog[r.pos:])
			r.pos += c
			n += c
			continue
		}
		if r.refill() {
			continue
		}
		for ; n < len(dst); n++ {
			dst[n] = r.cont.Next()
		}
	}
	return n
}

// refill advances r.prog past r.pos, growing the shared window if needed.
// It returns false once the window is exhausted, with r.cont set to a
// private generator positioned at the window edge.
//
//clipvet:allocok grows the shared window once per chunk; amortized over thousands of instructions
func (r *Replay) refill() bool {
	if r.cont != nil {
		return false
	}
	if p := r.st.pub.Load(); p != nil && r.pos < len(*p) {
		r.prog = *p
		return true
	}
	st := r.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if p := st.pub.Load(); p != nil && r.pos < len(*p) {
		r.prog = *p
		return true
	}
	if r.pos >= sharedWindow {
		// st.g generated exactly sharedWindow instructions; a clone of it
		// continues the stream privately from here.
		r.cont = st.g.clone()
		return false
	}
	var cur []Instr
	if p := st.pub.Load(); p != nil {
		cur = *p
	} else {
		cur = make([]Instr, 0, sharedChunk)
	}
	target := len(cur) + sharedChunk
	if target > sharedWindow {
		target = sharedWindow
	}
	for len(cur) < target {
		cur = append(cur, st.g.Next())
	}
	st.pub.Store(&cur)
	r.prog = cur
	return true
}

// clone deep-copies the generator's mutable state so a continuation advances
// independently of the shared stream position. The program, chase table and
// per-site delta sets are immutable after construction and stay shared.
//
//clipvet:allocok runs once per core, at shared-window exhaustion
func (g *gen) clone() *gen {
	cp := *g
	rng := *g.rng
	cp.rng = &rng
	cp.sites = append([]siteState(nil), g.sites...)
	return &cp
}
