package trace

import (
	"fmt"

	"clip/internal/snapshot"
)

// Generator checkpointing. A generator's immutable shape (program, chase
// table, site specs) is a pure function of its Config and is rebuilt by
// construction; only the mutable stream position is captured: the RNG
// state, program counter, emitted count, phase flag and per-site cursors.
//
// Replay adds one wrinkle: its position indexes a process-wide shared
// window that grows lazily (one sharedChunk per refill), so a restored
// position cannot simply be assigned — the window in the restoring process
// may be shorter, and refill only guarantees progress one chunk at a time.
// Restore instead replays the stream by discarding Next() results up to the
// saved position (at most sharedWindow calls), which grows the shared
// window through the same code path a live run uses. If a private
// continuation generator was active, one extra Next() forces its creation
// and the saved continuation state then overwrites the clone's cursors.

// saveState writes the mutable generator state.
func (g *gen) saveState(w *snapshot.Writer) {
	g.rng.Save(w)
	w.Int(g.pc)
	w.U64(g.emit)
	w.Bool(g.inAltPhase)
	w.Int(len(g.sites))
	for i := range g.sites {
		st := &g.sites[i]
		w.U64(st.cursor)
		w.Int(st.deltaIdx)
		w.U64(st.chaseAt)
		w.Bool(st.takenState)
		w.Int(st.wordRep)
		w.Int(st.rowLeft)
	}
}

// loadState restores the mutable generator state into a generator built
// from the same Config.
func (g *gen) loadState(r *snapshot.Reader) {
	g.rng.Load(r)
	g.pc = r.Int()
	g.emit = r.U64()
	g.inAltPhase = r.Bool()
	if n := r.Int(); r.Err() == nil && n != len(g.sites) {
		r.Fail(fmt.Errorf("trace: snapshot has %d sites, generator has %d: %w",
			n, len(g.sites), snapshot.ErrCorrupt))
	}
	if r.Err() != nil {
		return
	}
	for i := range g.sites {
		st := &g.sites[i]
		st.cursor = r.U64()
		st.deltaIdx = r.Int()
		st.chaseAt = r.U64()
		st.takenState = r.Bool()
		st.wordRep = r.Int()
		st.rowLeft = r.Int()
	}
	if r.Err() == nil && (g.pc < 0 || g.pc >= len(g.prog)) {
		r.Fail(fmt.Errorf("trace: snapshot pc %d out of program [0,%d): %w",
			g.pc, len(g.prog), snapshot.ErrCorrupt))
	}
}

const (
	genKindPrivate = 0 // a bare *gen (shared-stream cache was full)
	genKindReplay  = 1 // a Replay view of the shared window
)

// SaveGenerator serializes the stream position of a Generator created by
// New or Shared. Unknown Generator implementations fail the Writer.
func SaveGenerator(w *snapshot.Writer, gn Generator) {
	switch g := gn.(type) {
	case *gen:
		w.U8(genKindPrivate)
		g.saveState(w)
	case *Replay:
		w.U8(genKindReplay)
		w.Int(g.pos)
		w.Bool(g.cont != nil)
		if g.cont != nil {
			g.cont.saveState(w)
		}
	default:
		w.Fail(fmt.Errorf("trace: cannot snapshot generator type %T", gn))
	}
}

// LoadGenerator restores a position saved by SaveGenerator into a freshly
// constructed Generator of the same Config. The receiver kind may differ
// from the saved kind (the shared-stream cache fills process-locally), as
// long as both produce the identical stream — a private receiver seeks by
// discarding, exactly like a Replay.
func LoadGenerator(r *snapshot.Reader, gn Generator) {
	kind := r.U8()
	if r.Err() != nil {
		return
	}
	switch kind {
	case genKindPrivate:
		switch g := gn.(type) {
		case *gen:
			g.loadState(r)
		case *Replay:
			// A private position is an absolute stream state; seek the
			// replay past its shared window and overwrite the continuation.
			seekReplay(r, g, sharedWindow, true)
		default:
			r.Fail(fmt.Errorf("trace: cannot restore into generator type %T", gn))
		}
	case genKindReplay:
		pos := r.Int()
		contActive := r.Bool()
		if r.Err() != nil {
			return
		}
		if pos < 0 || pos > sharedWindow {
			r.Fail(fmt.Errorf("trace: snapshot replay position %d out of range: %w",
				pos, snapshot.ErrCorrupt))
			return
		}
		switch g := gn.(type) {
		case *Replay:
			seekReplay(r, g, pos, contActive)
		case *gen:
			// The saved view was a shared-window index; replay the same
			// number of instructions on the private generator, then apply
			// the continuation state if one was active.
			for i := 0; i < pos; i++ {
				g.Next()
			}
			if contActive {
				g.loadState(r)
			}
		default:
			r.Fail(fmt.Errorf("trace: cannot restore into generator type %T", gn))
		}
	default:
		r.Fail(fmt.Errorf("trace: unknown generator kind %d: %w", kind, snapshot.ErrCorrupt))
	}
}

// seekReplay advances a fresh Replay to pos by consuming the stream (which
// extends the process-wide shared window through the normal refill path),
// then forces and overwrites the continuation generator when one was
// active at save time.
func seekReplay(r *snapshot.Reader, g *Replay, pos int, contActive bool) {
	for i := 0; i < pos; i++ {
		g.Next()
	}
	if !contActive {
		return
	}
	if g.cont == nil {
		// One discarded instruction forces continuation creation; the
		// clone's cursors are then overwritten wholesale by the saved
		// state, erasing the discard.
		g.Next()
	}
	g.cont.loadState(r)
}
