// Package trace provides deterministic synthetic workload generators that
// stand in for the SPEC CPU2017 / GAP / CloudSuite / CVP SimPoint traces the
// paper evaluates on (the real traces are multi-GB artifacts we cannot ship).
//
// A generator emits a decoded instruction stream with stable instruction
// pointers, per-IP memory access patterns, and control flow. The patterns are
// chosen so that the statistics CLIP's mechanism (and every baseline) keys on
// are reproduced: which IPs are spatially regular (prefetchable), which loads
// stall the ROB head, how criticality correlates with branch history, and how
// memory-intensive the workload is relative to the cache hierarchy.
package trace

import (
	"fmt"

	"clip/internal/mem"
)

// Op classifies an instruction for the core timing model.
type Op uint8

const (
	OpALU Op = iota
	OpLoad
	OpStore
	OpBranch
)

func (o Op) String() string {
	switch o {
	case OpALU:
		return "alu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Instr is one decoded instruction handed to the core model.
type Instr struct {
	IP    uint64
	Op    Op
	Addr  mem.Addr // data address for loads/stores
	Taken bool     // actual outcome for branches

	// ExecLat is the execution latency in cycles for non-memory work.
	ExecLat uint8

	// DependsOnPrevLoad serialises this load behind the youngest older load
	// (pointer chasing). Chained loads cannot overlap, killing MLP and making
	// their misses highly critical.
	DependsOnPrevLoad bool
}

// Generator produces an endless deterministic instruction stream.
type Generator interface {
	// Next returns the next instruction. The stream never ends; workloads
	// are replayed until every core finishes its instruction budget.
	Next() Instr
	// Name identifies the workload (paper trace name).
	Name() string
}

// PatternClass describes the memory behaviour of one static load site.
type PatternClass uint8

const (
	// PatStream walks line addresses with a constant per-IP delta —
	// perfectly learnable by delta prefetchers (Berti, IPCP-CS).
	PatStream PatternClass = iota
	// PatMultiStride cycles through a small set of deltas — learnable with
	// moderate accuracy (spatial prefetchers do better than pure stride).
	PatMultiStride
	// PatChase performs dependent pointer chasing through a shuffled ring —
	// unpredictable addresses, serialised by data dependence.
	PatChase
	// PatIrregular gathers from random lines in the footprint with no
	// dependence chain (GAP-style gather) — unpredictable but MLP-friendly.
	PatIrregular
	// PatMixed is branch-correlated: when the guarding branch is taken the
	// site streams (cache-friendly); when not taken it gathers from the far
	// footprint (miss, critical). Criticality is dynamic and follows control
	// flow — the behaviour CLIP's critical signature captures and IP-only
	// predictors cannot.
	PatMixed
)

func (p PatternClass) String() string {
	switch p {
	case PatStream:
		return "stream"
	case PatMultiStride:
		return "multistride"
	case PatChase:
		return "chase"
	case PatIrregular:
		return "irregular"
	case PatMixed:
		return "mixed"
	}
	return fmt.Sprintf("PatternClass(%d)", uint8(p))
}

// SiteSpec configures a group of static load sites in the loop body.
type SiteSpec struct {
	Class PatternClass
	// StrideLines for PatStream; the delta set for PatMultiStride is derived
	// from it. Defaults to 1.
	StrideLines int64
	// Weight is the number of distinct load IPs instantiated with this
	// behaviour (real loops have one load IP per array walked), which also
	// sets the class's dynamic frequency.
	Weight int
}

// Config fully describes a synthetic benchmark.
type Config struct {
	Name string
	Seed uint64

	// Sites lists the static load sites of the hot loop.
	Sites []SiteSpec

	// FootprintLines is the number of distinct cache lines the irregular/
	// chase/mixed sites roam over; relative to the LLC it sets the MPKI.
	FootprintLines uint64

	// StreamRegionLines bounds the collective footprint of all streaming
	// sites (each site wraps within its share) before wrapping. Zero means
	// the streams share FootprintLines.
	StreamRegionLines uint64

	// LoadFrac / StoreFrac / BranchFrac are dynamic instruction fractions;
	// the remainder is ALU work.
	LoadFrac, StoreFrac, BranchFrac float64

	// BranchMispredictRate is the app-intrinsic misprediction probability
	// for non-pattern branches.
	BranchMispredictRate float64

	// MixedTakenProb is the probability the guard branch of a PatMixed site
	// is taken (stream direction).
	MixedTakenProb float64

	// ChaseChainFrac: fraction of chase-site loads marked dependent on the
	// previous load (1.0 = fully serialised list traversal).
	ChaseChainFrac float64

	// ExecLatMean is the mean ALU latency (cycles).
	ExecLatMean int

	// IPFootprint scales the number of distinct basic blocks; CloudSuite/CVP
	// use large values so criticality tables alias (paper §4.3).
	IPFootprint int

	// PhasePeriod, when nonzero, alternates between the primary body and a
	// secondary low-memory body every PhasePeriod instructions, exercising
	// CLIP's APC phase detection.
	PhasePeriod uint64

	// AddrOffset shifts the whole data address space; the simulator gives
	// each core a distinct offset so SPEC-rate mixes do not share data.
	AddrOffset mem.Addr

	// WordsPerLine is how many consecutive accesses a streaming site makes
	// within one cache line before advancing. The default of 16 calibrates
	// streaming workloads to SPEC-like L1 line-touch rates (~20 new lines
	// per kilo-instruction); real code revisits a line's words across loop
	// iterations, not just the 8 sequential elements. Chase/irregular sites
	// always touch a line once, like pointer dereferences.
	WordsPerLine int
}

// Validate reports configuration errors early.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("trace: config needs a name")
	}
	if len(c.Sites) == 0 {
		return fmt.Errorf("trace %s: no load sites", c.Name)
	}
	if c.LoadFrac <= 0 || c.LoadFrac+c.StoreFrac+c.BranchFrac >= 1 {
		return fmt.Errorf("trace %s: bad instruction fractions", c.Name)
	}
	if c.FootprintLines == 0 {
		return fmt.Errorf("trace %s: zero footprint", c.Name)
	}
	return nil
}

// siteState is the runtime state of one load site.
type siteState struct {
	spec       SiteSpec
	ip         uint64
	guardIP    uint64 // branch IP guarding a PatMixed site
	base       mem.Addr
	cursor     uint64 // line offset within region for streams
	deltaIdx   int
	deltas     []int64
	chaseAt    uint64 // current position for chase sites
	takenState bool   // last guard outcome
	wordRep    int    // accesses made to the current line (word reuse)
	rowLeft    int    // lines until the stream's next row/plane boundary
}

// gen implements Generator.
type gen struct {
	cfg  Config
	rng  *mem.PRNG
	prog []progSlot // the unrolled loop body
	pc   int
	emit uint64 // instructions emitted

	sites     []siteState
	farBase   mem.Addr
	chaseTab  []uint32 // shuffled successor table for chase sites
	siteLines uint64   // per-stream-site region share

	inAltPhase bool
}

// progSlot is one slot of the synthetic loop body.
type progSlot struct {
	op      Op
	site    int  // load site index for loads; -1 otherwise
	isGuard bool // branch slot that guards the following mixed site
	guarded int  // site index whose behaviour this guard controls
	ip      uint64
	execLat uint8
	// storeSite: stores reuse site addressing (write the line just loaded).
	storeSite int
}

// New constructs a Generator from cfg. The construction is deterministic in
// cfg.Seed and cfg.Name.
func New(cfg Config) (Generator, error) {
	return newGen(cfg)
}

func newGen(cfg Config) (*gen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = mem.HashString(cfg.Name)
	}
	g := &gen{cfg: cfg, rng: mem.NewPRNG(seed)}
	g.buildSites()
	g.buildProgram()
	return g, nil
}

// MustNew is New but panics on config errors; for registry-internal use.
func MustNew(cfg Config) Generator {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *gen) Name() string { return g.cfg.Name }

const (
	ipBase     = 0x400000 // synthetic text segment
	dataBase   = 0x10000000
	farOffset  = 0x40000000 // far footprint for irregular accesses
	chaseScale = 4          // chase table entries = footprint/chaseScale
)

func (g *gen) buildSites() {
	g.farBase = mem.Addr(farOffset)
	// Chase successor table: a shuffled ring so traversal order is a random
	// permutation (defeats spatial prefetching) but deterministic.
	n := int(g.cfg.FootprintLines / chaseScale)
	if n < 16 {
		n = 16
	}
	g.chaseTab = make([]uint32, n)
	for i := range g.chaseTab {
		g.chaseTab[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := g.rng.Intn(i + 1)
		g.chaseTab[i], g.chaseTab[j] = g.chaseTab[j], g.chaseTab[i]
	}

	// Each SiteSpec expands into Weight distinct sites: separate load IPs
	// walking separate regions, like the per-array loads of a real loop.
	ipStride := uint64(16)
	idx := 0
	for _, spec := range g.cfg.Sites {
		w := spec.Weight
		if w <= 0 {
			w = 1
		}
		for k := 0; k < w; k++ {
			// Load IPs sit compactly in the loop body like real code (two
			// instruction slots per site: the load and its guard).
			st := siteState{
				spec: spec,
				ip:   ipBase + uint64(idx)*8,
				base: mem.Addr(dataBase + uint64(idx)*0x1000000),
			}
			stride := spec.StrideLines
			if stride == 0 {
				stride = 1
			}
			switch spec.Class {
			case PatMultiStride:
				st.deltas = []int64{stride, stride * 2, stride, stride * 3}
			default:
				st.deltas = []int64{stride}
			}
			st.guardIP = st.ip + 4
			st.chaseAt = uint64(g.rng.Intn(len(g.chaseTab)))
			g.sites = append(g.sites, st)
			idx++
		}
	}
	_ = ipStride
	// Streaming sites share the stream footprint; each wraps in its slice.
	streamers := 0
	for _, st := range g.sites {
		switch st.spec.Class {
		case PatStream, PatMultiStride, PatMixed:
			streamers++
		}
	}
	total := g.cfg.StreamRegionLines
	if total == 0 {
		total = g.cfg.FootprintLines
	}
	if streamers > 0 {
		g.siteLines = total / uint64(streamers)
	}
	if g.siteLines < 256 {
		g.siteLines = 256
	}
	for i := range g.sites {
		g.sites[i].cursor = uint64(i*977) % g.siteLines // desync streams
	}
}

// buildProgram unrolls one loop body. Slots get stable IPs so every dynamic
// execution of a slot reuses the same instruction pointer.
func (g *gen) buildProgram() {
	// One load slot per expanded site per body iteration.
	loadSlots := len(g.sites)
	bodyLen := int(float64(loadSlots) / g.cfg.LoadFrac)
	if bodyLen < loadSlots+2 {
		bodyLen = loadSlots + 2
	}
	storeSlots := int(g.cfg.StoreFrac * float64(bodyLen))
	branchSlots := int(g.cfg.BranchFrac * float64(bodyLen))

	ipBlocks := g.cfg.IPFootprint
	if ipBlocks < 1 {
		ipBlocks = 1
	}

	var prog []progSlot
	nextIP := uint64(ipBase + 0x100000)
	takeIP := func() uint64 {
		ip := nextIP
		nextIP += 4
		return ip
	}
	execLat := func() uint8 {
		m := g.cfg.ExecLatMean
		if m <= 0 {
			m = 1
		}
		l := 1 + g.rng.Intn(2*m)
		if l > 250 {
			l = 250
		}
		return uint8(l)
	}

	// Replicate the body across ipBlocks blocks so large-IP-footprint
	// workloads (CloudSuite/CVP) have thousands of distinct load IPs.
	for blk := 0; blk < ipBlocks; blk++ {
		siteIdx := 0
		loadsPlaced, storesPlaced, branchesPlaced := 0, 0, 0
		for slot := 0; slot < bodyLen; slot++ {
			switch {
			case loadsPlaced < loadSlots && slot%max(1, bodyLen/loadSlots) == 0:
				si := g.pickSite(&siteIdx)
				// Mixed sites get a guard branch immediately before.
				if g.sites[si].spec.Class == PatMixed {
					prog = append(prog, progSlot{
						op: OpBranch, site: -1, isGuard: true, guarded: si,
						ip: g.sites[si].guardIP + uint64(blk)*0x100000,
					})
				}
				prog = append(prog, progSlot{
					op: OpLoad, site: si,
					ip: g.sites[si].ip + uint64(blk)*0x100000,
				})
				loadsPlaced++
			case storesPlaced < storeSlots && slot%max(1, bodyLen/(storeSlots+1)) == 1:
				prog = append(prog, progSlot{
					op: OpStore, site: -1, storeSite: storesPlaced % len(g.sites),
					ip: takeIP(),
				})
				storesPlaced++
			case branchesPlaced < branchSlots && slot%max(1, bodyLen/(branchSlots+1)) == 2:
				prog = append(prog, progSlot{op: OpBranch, site: -1, guarded: -1, ip: takeIP()})
				branchesPlaced++
			default:
				prog = append(prog, progSlot{op: OpALU, site: -1, ip: takeIP(), execLat: execLat()})
			}
		}
		// Loop back-edge branch.
		prog = append(prog, progSlot{op: OpBranch, site: -1, guarded: -1, ip: takeIP()})
	}
	g.prog = prog
}

// pickSite round-robins over the expanded sites.
func (g *gen) pickSite(cursor *int) int {
	i := *cursor % len(g.sites)
	*cursor++
	return i
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Next implements Generator.
func (g *gen) Next() Instr {
	ins := g.next()
	if ins.Addr != 0 {
		ins.Addr += g.cfg.AddrOffset
	}
	return ins
}

func (g *gen) next() Instr {
	slot := g.prog[g.pc]
	g.pc++
	if g.pc == len(g.prog) {
		g.pc = 0
	}
	g.emit++

	if g.cfg.PhasePeriod > 0 {
		phase := (g.emit / g.cfg.PhasePeriod) % 2
		g.inAltPhase = phase == 1
	}

	ins := Instr{IP: slot.ip, Op: slot.op, ExecLat: slot.execLat}
	if ins.ExecLat == 0 {
		ins.ExecLat = 1
	}

	switch slot.op {
	case OpBranch:
		if slot.isGuard {
			st := &g.sites[slot.guarded]
			st.takenState = g.rng.Bool(g.cfg.MixedTakenProb)
			ins.Taken = st.takenState
		} else {
			// Loop-style branch: mostly taken with occasional app-intrinsic
			// "hard" outcomes at the configured rate.
			ins.Taken = !g.rng.Bool(g.cfg.BranchMispredictRate)
		}
	case OpLoad:
		st := &g.sites[slot.site]
		ins.Addr, ins.DependsOnPrevLoad = g.loadAddr(st)
	case OpStore:
		st := &g.sites[slot.storeSite%len(g.sites)]
		// Stores write near the site's last address (read-modify-write).
		ins.Addr = st.base + mem.Addr(st.cursor*mem.LineBytes)
	}
	return ins
}

// loadAddr advances site state and returns the access address.
func (g *gen) loadAddr(st *siteState) (mem.Addr, bool) {
	// In the alternate phase the workload turns cache-resident: every site
	// reuses a tiny region (drops MPKI, shifts APC).
	if g.inAltPhase {
		st.cursor = (st.cursor + 1) % 32
		return st.base + mem.Addr(st.cursor*mem.LineBytes), false
	}
	switch st.spec.Class {
	case PatStream:
		return g.streamAddr(st), false
	case PatMultiStride:
		if st.wordRep+1 < g.wordsPerLine() {
			st.wordRep++
		} else {
			st.wordRep = 0
			d := st.deltas[st.deltaIdx]
			st.deltaIdx = (st.deltaIdx + 1) % len(st.deltas)
			st.cursor = wrapAdd(st.cursor, d, g.regionLines())
		}
		return st.base + mem.Addr(st.cursor*mem.LineBytes) + mem.Addr(st.wordRep*8), false
	case PatChase:
		st.chaseAt = uint64(g.chaseTab[st.chaseAt%uint64(len(g.chaseTab))])
		addr := g.farBase + mem.Addr((st.chaseAt*chaseScale%g.cfg.FootprintLines)*mem.LineBytes)
		dep := g.rng.Bool(g.cfg.ChaseChainFrac)
		return addr, dep
	case PatIrregular:
		line := g.rng.Uint64() % g.cfg.FootprintLines
		return g.farBase + mem.Addr(line*mem.LineBytes), false
	case PatMixed:
		if st.takenState {
			return g.streamAddr(st), false
		}
		line := g.rng.Uint64() % g.cfg.FootprintLines
		return g.farBase + mem.Addr(line*mem.LineBytes), true
	}
	return st.base, false
}

func (g *gen) regionLines() uint64 { return g.siteLines }

func (g *gen) wordsPerLine() int {
	if g.cfg.WordsPerLine > 0 {
		return g.cfg.WordsPerLine
	}
	return 16
}

func (g *gen) streamAddr(st *siteState) mem.Addr {
	// Sequential word accesses reuse the line before advancing by the delta,
	// like real streaming code walking 8-byte elements.
	if st.wordRep+1 < g.wordsPerLine() {
		st.wordRep++
	} else {
		st.wordRep = 0
		// Row/plane boundaries: stencil-style code streams a row of the
		// array, then jumps to the next row at a far offset. The jump makes
		// the last few delta-prefetches of each row overrun the boundary,
		// which is what caps real stream-prefetch accuracy near the paper's
		// 83% for Berti.
		if st.rowLeft <= 0 {
			st.rowLeft = 16 + g.rng.Intn(32)
			st.cursor = g.rng.Uint64() % g.regionLines()
		} else {
			st.rowLeft--
			d := st.deltas[0]
			st.cursor = wrapAdd(st.cursor, d, g.regionLines())
		}
	}
	return st.base + mem.Addr(st.cursor*mem.LineBytes) + mem.Addr(st.wordRep*8)
}

func wrapAdd(cur uint64, delta int64, mod uint64) uint64 {
	v := int64(cur) + delta
	m := int64(mod)
	v %= m
	if v < 0 {
		v += m
	}
	return uint64(v)
}
