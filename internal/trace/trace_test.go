package trace

import (
	"testing"

	"clip/internal/mem"
)

var testScale = Scale{LLCLinesPerCore: 2048}

func testConfig() Config {
	return Config{
		Name: "unit",
		Sites: []SiteSpec{
			{Class: PatStream, StrideLines: 1, Weight: 2},
			{Class: PatChase, Weight: 1},
			{Class: PatMixed, StrideLines: 1, Weight: 1},
		},
		FootprintLines: 4096, LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		BranchMispredictRate: 0.05, MixedTakenProb: 0.5, ChaseChainFrac: 0.8,
		ExecLatMean: 2,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("empty name accepted")
	}
	bad = good
	bad.Sites = nil
	if bad.Validate() == nil {
		t.Fatal("no sites accepted")
	}
	bad = good
	bad.LoadFrac = 0
	if bad.Validate() == nil {
		t.Fatal("zero load frac accepted")
	}
	bad = good
	bad.LoadFrac, bad.StoreFrac, bad.BranchFrac = 0.5, 0.4, 0.3
	if bad.Validate() == nil {
		t.Fatal("fractions over 1 accepted")
	}
	bad = good
	bad.FootprintLines = 0
	if bad.Validate() == nil {
		t.Fatal("zero footprint accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := MustNew(testConfig())
	b := MustNew(testConfig())
	for i := 0; i < 5000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestGeneratorInstructionMix(t *testing.T) {
	g := MustNew(testConfig())
	const n = 50000
	var loads, stores, branches int
	for i := 0; i < n; i++ {
		switch g.Next().Op {
		case OpLoad:
			loads++
		case OpStore:
			stores++
		case OpBranch:
			branches++
		}
	}
	lf := float64(loads) / n
	if lf < 0.2 || lf > 0.4 {
		t.Errorf("load fraction %v far from configured 0.3", lf)
	}
	if stores == 0 || branches == 0 {
		t.Errorf("missing stores (%d) or branches (%d)", stores, branches)
	}
}

func TestStableIPsPerSite(t *testing.T) {
	g := MustNew(testConfig())
	ipAddrs := map[uint64]map[mem.Addr]bool{}
	for i := 0; i < 20000; i++ {
		ins := g.Next()
		if ins.Op != OpLoad {
			continue
		}
		if ipAddrs[ins.IP] == nil {
			ipAddrs[ins.IP] = map[mem.Addr]bool{}
		}
		ipAddrs[ins.IP][ins.Addr.Line()] = true
	}
	if len(ipAddrs) == 0 || len(ipAddrs) > 16 {
		t.Fatalf("expected a small stable set of load IPs, got %d", len(ipAddrs))
	}
	// Every load IP should touch multiple lines (the pattern advances).
	for ip, addrs := range ipAddrs {
		if len(addrs) < 2 {
			t.Errorf("IP %#x stuck on %d line(s)", ip, len(addrs))
		}
	}
}

func TestStreamSiteIsSequential(t *testing.T) {
	cfg := Config{
		Name:           "stream-only",
		Sites:          []SiteSpec{{Class: PatStream, StrideLines: 1, Weight: 1}},
		FootprintLines: 4096, LoadFrac: 0.3, ExecLatMean: 1,
	}
	g := MustNew(cfg)
	var prev mem.Addr
	var seen, sequential, transitions int
	for i := 0; i < 40000 && seen < 2000; i++ {
		ins := g.Next()
		if ins.Op != OpLoad {
			continue
		}
		if seen > 0 {
			delta := int64(ins.Addr.LineID()) - int64(prev.LineID())
			switch delta {
			case 0:
				// word reuse within the line
			case 1:
				sequential++
				transitions++
			default:
				transitions++ // row/plane boundary jump
			}
		}
		prev = ins.Addr
		seen++
	}
	if seen < 2000 {
		t.Fatal("too few loads observed")
	}
	// Streams must be dominated by +1 line transitions, with occasional
	// row-boundary jumps (the realism knob that caps prefetch accuracy).
	frac := float64(sequential) / float64(transitions)
	if frac < 0.85 || frac >= 1.0 {
		t.Fatalf("sequential fraction %v outside (0.85, 1.0): boundaries missing or dominant", frac)
	}
}

func TestChaseLoadsAreDependent(t *testing.T) {
	cfg := Config{
		Name:           "chase-only",
		Sites:          []SiteSpec{{Class: PatChase, Weight: 1}},
		FootprintLines: 4096, LoadFrac: 0.3, ChaseChainFrac: 1.0, ExecLatMean: 1,
	}
	g := MustNew(cfg)
	var loads, deps int
	for i := 0; i < 5000; i++ {
		ins := g.Next()
		if ins.Op == OpLoad {
			loads++
			if ins.DependsOnPrevLoad {
				deps++
			}
		}
	}
	if loads == 0 || deps != loads {
		t.Fatalf("chase chain frac 1.0: %d/%d dependent", deps, loads)
	}
}

func TestMixedSiteFollowsGuardBranch(t *testing.T) {
	cfg := Config{
		Name:           "mixed-only",
		Sites:          []SiteSpec{{Class: PatMixed, StrideLines: 1, Weight: 1}},
		FootprintLines: 1 << 16, LoadFrac: 0.3, MixedTakenProb: 0.5, ExecLatMean: 1,
	}
	g := MustNew(cfg)
	var lastGuardTaken, haveGuard bool
	var streamNear, farWhenNotTaken, violations int
	for i := 0; i < 30000; i++ {
		ins := g.Next()
		switch ins.Op {
		case OpBranch:
			lastGuardTaken, haveGuard = ins.Taken, true
		case OpLoad:
			if !haveGuard {
				continue
			}
			far := uint64(ins.Addr) >= farOffset
			if lastGuardTaken && far {
				violations++
			}
			if lastGuardTaken && !far {
				streamNear++
			}
			if !lastGuardTaken && far {
				farWhenNotTaken++
			}
			haveGuard = false
		}
	}
	if violations > 0 {
		t.Fatalf("%d taken-guard loads went to the far footprint", violations)
	}
	if streamNear == 0 || farWhenNotTaken == 0 {
		t.Fatalf("mixed site degenerate: near=%d far=%d", streamNear, farWhenNotTaken)
	}
}

func TestPhaseChangeReducesFootprint(t *testing.T) {
	cfg := testConfig()
	cfg.PhasePeriod = 10000
	g := MustNew(cfg)
	countFar := func(n int) int {
		far := 0
		for i := 0; i < n; i++ {
			ins := g.Next()
			if ins.Op == OpLoad && uint64(ins.Addr) >= farOffset {
				far++
			}
		}
		return far
	}
	phase0 := countFar(10000)
	phase1 := countFar(10000)
	if phase1 >= phase0/4 {
		t.Fatalf("alternate phase not cache-resident: far loads %d -> %d", phase0, phase1)
	}
}

func TestRegistryAllNamesConstructible(t *testing.T) {
	for _, name := range AllNames() {
		cfg, err := Lookup(name, testScale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
		g := MustNew(cfg)
		for i := 0; i < 100; i++ {
			g.Next()
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := Lookup("not-a-trace", testScale); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestSpecListHas45Entries(t *testing.T) {
	if len(SpecHomogeneous45) != 45 {
		t.Fatalf("SPEC homogeneous list has %d entries, want 45", len(SpecHomogeneous45))
	}
	seen := map[string]bool{}
	for _, n := range SpecHomogeneous45 {
		if seen[n] {
			t.Fatalf("duplicate trace %s", n)
		}
		seen[n] = true
	}
}

func TestSimpointsOfSameFamilyDiffer(t *testing.T) {
	a := MustNew(MustLookup("605.mcf_s-1554B", testScale))
	b := MustNew(MustLookup("605.mcf_s-994B", testScale))
	diff := false
	for i := 0; i < 2000; i++ {
		if a.Next() != b.Next() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("two mcf simpoints produced identical streams")
	}
}

func TestCVPHasLargeIPFootprint(t *testing.T) {
	g := MustNew(MustLookup("server_013", testScale))
	ips := map[uint64]bool{}
	for i := 0; i < 60000; i++ {
		ins := g.Next()
		if ins.Op == OpLoad {
			ips[ins.IP] = true
		}
	}
	spec := MustNew(MustLookup("619.lbm_s-2676B", testScale))
	specIPs := map[uint64]bool{}
	for i := 0; i < 60000; i++ {
		ins := spec.Next()
		if ins.Op == OpLoad {
			specIPs[ins.IP] = true
		}
	}
	if len(ips) <= 4*len(specIPs) {
		t.Fatalf("CVP IP footprint (%d) should dwarf lbm's (%d)", len(ips), len(specIPs))
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpALU: "alu", OpLoad: "load", OpStore: "store", OpBranch: "branch",
	} {
		if op.String() != want {
			t.Errorf("Op %d = %q, want %q", op, op.String(), want)
		}
	}
}

func TestWrapAddNeverNegative(t *testing.T) {
	for _, d := range []int64{-5, -1, 0, 1, 7} {
		cur := uint64(3)
		for i := 0; i < 100; i++ {
			cur = wrapAdd(cur, d, 16)
			if cur >= 16 {
				t.Fatalf("wrapAdd escaped range: %d", cur)
			}
		}
	}
}

func TestSimpointJitterVariesIntensity(t *testing.T) {
	a := MustLookup("605.mcf_s-1554B", testScale)
	b := MustLookup("605.mcf_s-994B", testScale)
	if a.FootprintLines == b.FootprintLines {
		t.Fatal("simpoints of one family should differ in footprint")
	}
	// Jitter must stay bounded: same family, same order of magnitude.
	ratio := float64(a.FootprintLines) / float64(b.FootprintLines)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("jitter too wild: ratio %v", ratio)
	}
	// Deterministic.
	a2 := MustLookup("605.mcf_s-1554B", testScale)
	if a.FootprintLines != a2.FootprintLines || a.LoadFrac != a2.LoadFrac {
		t.Fatal("jitter not deterministic")
	}
}

func TestJitterKeepsConfigsValid(t *testing.T) {
	for _, name := range SpecHomogeneous45 {
		cfg := MustLookup(name, testScale)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestWrfHasPhaseBehaviour(t *testing.T) {
	cfg := MustLookup("621.wrf_s-6673B", testScale)
	if cfg.PhasePeriod == 0 {
		t.Fatal("wrf should alternate phases (registry models its physics phases)")
	}
	g := MustNew(cfg)
	countFar := func(n int) int {
		far := 0
		for i := 0; i < n; i++ {
			ins := g.Next()
			if ins.Op == OpLoad && uint64(ins.Addr)&^(uint64(1)<<63) >= farOffset {
				far++
			}
		}
		return far
	}
	// Memory intensity should differ between the two phases.
	a := countFar(int(cfg.PhasePeriod))
	b := countFar(int(cfg.PhasePeriod))
	if a == b {
		t.Fatalf("phases indistinguishable: %d vs %d far loads", a, b)
	}
}

func TestStoresShareSiteAddressSpace(t *testing.T) {
	g := MustNew(testConfig())
	loadLines := map[uint64]bool{}
	var storeAddrs []mem.Addr
	for i := 0; i < 30000; i++ {
		ins := g.Next()
		switch ins.Op {
		case OpLoad:
			loadLines[ins.Addr.LineID()] = true
		case OpStore:
			storeAddrs = append(storeAddrs, ins.Addr)
		}
	}
	if len(storeAddrs) == 0 {
		t.Fatal("no stores")
	}
	// Stores write near site cursors: a majority should land on lines the
	// loads also touch (read-modify-write behaviour).
	hits := 0
	for _, a := range storeAddrs {
		if loadLines[a.LineID()] {
			hits++
		}
	}
	if float64(hits)/float64(len(storeAddrs)) < 0.3 {
		t.Fatalf("stores disjoint from load footprint: %d/%d", hits, len(storeAddrs))
	}
}

func TestAddrOffsetIsolation(t *testing.T) {
	a := testConfig()
	b := testConfig()
	b.AddrOffset = 1 << 42
	ga, gb := MustNew(a), MustNew(b)
	for i := 0; i < 2000; i++ {
		ia, ib := ga.Next(), gb.Next()
		if ia.Op == OpLoad && ib.Op == OpLoad {
			if ib.Addr != ia.Addr+1<<42 {
				t.Fatalf("offset not applied uniformly: %#x vs %#x",
					uint64(ia.Addr), uint64(ib.Addr))
			}
		}
	}
}
