package workload

import (
	"sync"
	"testing"

	"clip/internal/runner"
	"clip/internal/sim"
)

// TestRunnerConcurrentMemoization hammers one Runner from many goroutines
// asking for the same normalized weighted speedup. The singleflight memos
// must collapse the work to one alone-IPC run, one baseline run and one
// variant run — and every caller must read identical values. Run under
// `go test -race` this also proves the Runner's concurrency safety.
func TestRunnerConcurrentMemoization(t *testing.T) {
	r := NewRunner(template())
	r.Cache = runner.NewCache() // private cache so executions are countable
	mix := homogeneousMix("619.lbm_s-2676B", 4)
	berti := Variant{Name: "berti", Mutate: func(c *sim.Config) { c.Prefetcher = "berti" }}

	const callers = 8
	ws := make([]float64, callers)
	res := make([]*sim.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, varRes, _, err := r.NormalizedWS(mix, berti)
			if err != nil {
				t.Error(err)
				return
			}
			ws[i] = w
			res[i] = varRes
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if ws[i] != ws[0] {
			t.Fatalf("caller %d got WS %v, caller 0 got %v", i, ws[i], ws[0])
		}
		if res[i] != res[0] {
			t.Fatal("concurrent callers received different result objects")
		}
	}
	st := r.Cache.Stats()
	// Homogeneous mix: one distinct benchmark -> one alone run, plus the
	// no-prefetch baseline and the berti variant. Anything above 3 means a
	// baseline or alone-IPC simulation was duplicated despite the memos.
	if st.Executions != 3 {
		t.Fatalf("executed %d simulations, want 3 (alone, baseline, variant)", st.Executions)
	}
}

// TestRunnerAloneIPCSingleflight checks the alone-IPC memo directly: many
// concurrent callers, one simulation.
func TestRunnerAloneIPCSingleflight(t *testing.T) {
	r := NewRunner(template())
	r.Cache = runner.NewCache()
	const callers = 16
	vals := make([]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := r.AloneIPC("605.mcf_s-1554B")
			if err != nil {
				t.Error(err)
				return
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if vals[i] != vals[0] {
			t.Fatalf("caller %d got %v, caller 0 got %v", i, vals[i], vals[0])
		}
	}
	if st := r.Cache.Stats(); st.Executions != 1 {
		t.Fatalf("executed %d simulations for one alone-IPC, want 1", st.Executions)
	}
}
