// Package workload builds the paper's workload mixes (45 homogeneous SPEC
// CPU2017 mixes, 200 random heterogeneous SPEC+GAP mixes, CloudSuite and CVP
// mixes) and computes the evaluation metric: weighted speedup normalized to
// no-prefetching (§5, "we report performance in terms of weighted speedup
// with respect to no prefetching").
package workload

import (
	"fmt"

	"clip/internal/mem"
	"clip/internal/runner"
	"clip/internal/sim"
	"clip/internal/stats"
	"clip/internal/trace"
)

// Mix is a named assignment of one benchmark per core.
type Mix struct {
	Name       string
	Benchmarks []string
}

// Homogeneous returns the paper's 45 homogeneous mixes: every core runs the
// same SPEC trace (SPEC RATE mode). limit > 0 truncates the list (for quick
// runs); limit <= 0 keeps all 45.
func Homogeneous(cores, limit int) []Mix {
	names := trace.SpecHomogeneous45
	if limit > 0 && limit < len(names) {
		names = names[:limit]
	}
	mixes := make([]Mix, 0, len(names))
	for _, n := range names {
		mixes = append(mixes, homogeneousMix(n, cores))
	}
	return mixes
}

func homogeneousMix(bench string, cores int) Mix {
	bs := make([]string, cores)
	for i := range bs {
		bs[i] = bench
	}
	return Mix{Name: bench, Benchmarks: bs}
}

// Heterogeneous returns n random mixes drawn from the SPEC and GAP pools
// "randomly with no bias towards any specific benchmark" (§5). Deterministic
// in seed.
func Heterogeneous(n, cores int, seed uint64) []Mix {
	pool := append(append([]string{}, trace.SpecHomogeneous45...), trace.GAPTraces...)
	rng := mem.NewPRNG(seed ^ 0x48e7e20) // 'hetero' salt
	mixes := make([]Mix, 0, n)
	for i := 0; i < n; i++ {
		bs := make([]string, cores)
		for c := range bs {
			bs[c] = pool[rng.Intn(len(pool))]
		}
		mixes = append(mixes, Mix{Name: fmt.Sprintf("het-%03d", i), Benchmarks: bs})
	}
	return mixes
}

// CloudCVP returns homogeneous mixes over the CloudSuite and CVP traces
// (Figure 17). limit truncates as in Homogeneous.
func CloudCVP(cores, limit int) []Mix {
	names := append(append([]string{}, trace.CloudSuiteTraces...), trace.CVPTraces...)
	if limit > 0 && limit < len(names) {
		names = names[:limit]
	}
	mixes := make([]Mix, 0, len(names))
	for _, n := range names {
		mixes = append(mixes, homogeneousMix(n, cores))
	}
	return mixes
}

// Variant mutates a base configuration into one evaluated design point
// (e.g. "berti", "berti+clip", "berti+fdp").
type Variant struct {
	Name   string
	Mutate func(*sim.Config)
}

// Runner executes mixes against a template configuration and converts raw
// results into the paper's normalized weighted speedup. Alone-mode IPCs (the
// denominator of weighted speedup) and per-mix no-prefetch baselines are
// memoized with singleflight semantics, so a Runner is safe for concurrent
// use by the parallel experiment engine: two workers asking for the same
// baseline wait on one simulation instead of duplicating it.
//
// Raw simulation runs additionally flow through a fingerprint-keyed run
// cache (Cache; the process-wide runner.Shared() by default), so
// byte-identical configurations — which different figures re-run constantly,
// baselines above all — execute exactly once per process. Results coming out
// of a Runner are therefore shared and must be treated as read-only.
type Runner struct {
	// Template is the base configuration; Workload is overwritten per mix.
	Template sim.Config

	// Cache dedups and memoizes raw simulation runs across Runners and
	// figures. Nil selects the process-wide shared cache.
	Cache *runner.Cache

	alone    runner.Memo[string, float64]
	baseline runner.Memo[string, baseEntry]
}

type baseEntry struct {
	res *sim.Result
	ws  float64
}

// NewRunner wraps a template configuration.
func NewRunner(template sim.Config) *Runner {
	return &Runner{Template: template}
}

func (r *Runner) cache() *runner.Cache {
	if r.Cache != nil {
		return r.Cache
	}
	return runner.Shared()
}

// AloneIPC returns the benchmark's IPC running alone on the full system (all
// channels, no co-runners, no prefetching) — the weighted-speedup baseline.
// Concurrent callers for the same benchmark share one simulation.
func (r *Runner) AloneIPC(bench string) (float64, error) {
	return r.alone.Do(bench, func() (float64, error) {
		cfg := r.Template
		cfg.Workload = []string{bench}
		cfg.Prefetcher = "none"
		cfg.CLIP = nil
		cfg.CritPredictor = ""
		cfg.Throttler = ""
		cfg.Hermes = false
		cfg.DSPatch = false
		res, err := r.cache().Run(cfg)
		if err != nil {
			return 0, err
		}
		return res.IPC[0], nil
	})
}

// RunMix executes one mix under a variant and returns the raw result plus
// its weighted speedup. The result is shared with other callers of the same
// configuration and must not be mutated.
func (r *Runner) RunMix(mix Mix, v Variant) (*sim.Result, float64, error) {
	cfg := r.Template
	cfg.Workload = append([]string{}, mix.Benchmarks...)
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	res, err := r.cache().Run(cfg)
	if err != nil {
		return nil, 0, err
	}
	alone := make([]float64, len(mix.Benchmarks))
	for i, b := range mix.Benchmarks {
		a, err := r.AloneIPC(b)
		if err != nil {
			return nil, 0, err
		}
		alone[i] = a
	}
	return res, stats.WeightedSpeedup(res.IPC, alone), nil
}

// NormalizedWS runs baseline (no prefetching) and the variant on a mix and
// returns WS(variant)/WS(no-PF) — the y-axis of Figures 1, 2, 5, 6, 9, 10,
// 17, 19, 20 and 21. The per-mix baseline is computed once per Runner no
// matter how many variants (or concurrent workers) ask for it.
func (r *Runner) NormalizedWS(mix Mix, v Variant) (float64, *sim.Result, *sim.Result, error) {
	be, err := r.baseline.Do(mix.Name, func() (baseEntry, error) {
		baseRes, baseWS, err := r.RunMix(mix, Variant{Name: "no-pf"})
		if err != nil {
			return baseEntry{}, err
		}
		return baseEntry{res: baseRes, ws: baseWS}, nil
	})
	if err != nil {
		return 0, nil, nil, err
	}
	varRes, varWS, err := r.RunMix(mix, v)
	if err != nil {
		return 0, nil, nil, err
	}
	return stats.SafeDiv(varWS, be.ws), varRes, be.res, nil
}
