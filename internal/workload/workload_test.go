package workload

import (
	"testing"

	"clip/internal/sim"
)

func template() sim.Config {
	cfg := sim.DefaultConfig(4, 2, 8)
	cfg.InstrPerCore = 4000
	cfg.WarmupInstr = 1000
	return cfg
}

func TestHomogeneousMixes(t *testing.T) {
	all := Homogeneous(8, 0)
	if len(all) != 45 {
		t.Fatalf("expected 45 mixes, got %d", len(all))
	}
	for _, m := range all {
		if len(m.Benchmarks) != 8 {
			t.Fatalf("%s has %d cores", m.Name, len(m.Benchmarks))
		}
		for _, b := range m.Benchmarks {
			if b != m.Benchmarks[0] {
				t.Fatalf("%s not homogeneous", m.Name)
			}
		}
	}
	if got := Homogeneous(4, 5); len(got) != 5 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestHeterogeneousMixesDeterministic(t *testing.T) {
	a := Heterogeneous(10, 8, 42)
	b := Heterogeneous(10, 8, 42)
	if len(a) != 10 {
		t.Fatalf("got %d mixes", len(a))
	}
	for i := range a {
		for c := range a[i].Benchmarks {
			if a[i].Benchmarks[c] != b[i].Benchmarks[c] {
				t.Fatal("mixes not deterministic")
			}
		}
	}
	// Different seeds differ.
	c := Heterogeneous(10, 8, 43)
	same := true
	for i := range a {
		for j := range a[i].Benchmarks {
			if a[i].Benchmarks[j] != c[i].Benchmarks[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seed has no effect")
	}
}

func TestHeterogeneousUsesGAP(t *testing.T) {
	mixes := Heterogeneous(20, 8, 7)
	foundGAP := false
	for _, m := range mixes {
		for _, b := range m.Benchmarks {
			if b == "pr-twitter" || b == "bfs-web" || b == "bc-road" ||
				b == "cc-twitter" || b == "sssp-road" {
				foundGAP = true
			}
		}
	}
	if !foundGAP {
		t.Fatal("no GAP traces drawn in 160 samples")
	}
}

func TestCloudCVPMixes(t *testing.T) {
	mixes := CloudCVP(4, 0)
	if len(mixes) != 15 {
		t.Fatalf("expected 15 CloudSuite+CVP mixes, got %d", len(mixes))
	}
}

func TestAloneIPCCached(t *testing.T) {
	r := NewRunner(template())
	a1, err := r.AloneIPC("619.lbm_s-2676B")
	if err != nil {
		t.Fatal(err)
	}
	if a1 <= 0 {
		t.Fatalf("alone IPC %v", a1)
	}
	a2, _ := r.AloneIPC("619.lbm_s-2676B")
	if a1 != a2 {
		t.Fatal("cache returned different value")
	}
}

func TestNormalizedWSBaselineIsOne(t *testing.T) {
	r := NewRunner(template())
	mix := homogeneousMix("619.lbm_s-2676B", 4)
	ws, _, _, err := r.NormalizedWS(mix, Variant{Name: "no-pf"})
	if err != nil {
		t.Fatal(err)
	}
	if ws < 0.99 || ws > 1.01 {
		t.Fatalf("no-PF normalized to itself = %v, want 1.0", ws)
	}
}

func TestNormalizedWSVariant(t *testing.T) {
	r := NewRunner(template())
	mix := homogeneousMix("603.bwaves_s-1740B", 4)
	ws, varRes, baseRes, err := r.NormalizedWS(mix, Variant{
		Name:   "berti",
		Mutate: func(c *sim.Config) { c.Prefetcher = "berti" },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ws <= 0 {
		t.Fatalf("normalized WS %v", ws)
	}
	if varRes.PFGenerated == 0 {
		t.Fatal("variant did not prefetch")
	}
	if baseRes.PFGenerated != 0 {
		t.Fatal("baseline prefetched")
	}
}
